//! The TCP server: one accept loop, one scoped thread per connection,
//! sessions sharded for parallelism (`shard` module), all request
//! handling instrumented through a per-server `rt_obs::Registry`.
//!
//! Robustness posture:
//! * a **connection cap** answered with an explicit `Busy` frame (the
//!   client learns the cap instead of hanging in the accept backlog);
//! * per-connection **read/write timeouts** so a stalled peer cannot
//!   pin a handler thread forever;
//! * a **session cap** plus **idle eviction** (stale sessions are
//!   reaped whenever a new one is opened) bounding memory;
//! * **graceful shutdown**: the `Shutdown` request stops the accept
//!   loop, in-flight requests finish, and the scope join drains every
//!   handler before [`Server::run`] returns.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use rt_obs::{Counter, Gauge, Histogram, Registry, Stopwatch};
use rt_sim::Table;

use crate::proto::{read_frame, write_frame, ErrorCode, FrameError, ProtoError, Request, Response};
use crate::session::Session;
use crate::shard::ShardMap;

/// Tunable limits of a [`Server`]. `Default` is sized for the loopback
/// benchmark harness: 8 shards, hundreds of connections, sessions big
/// enough for every experiment in this repo.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Independently locked session shards (parallelism ceiling for
    /// same-server, different-session requests).
    pub shards: usize,
    /// Connections served concurrently; the next one gets `Busy`.
    pub max_connections: u32,
    /// Live sessions across all shards; opens beyond it get
    /// `LimitExceeded`.
    pub max_sessions: u64,
    /// Largest `n` an `OpenSession` may ask for. Must satisfy
    /// `10 + 4·max_bins ≤ MAX_FRAME` so a `Loads` reply always fits a
    /// frame ([`Server::bind`] checks).
    pub max_bins: u32,
    /// Largest ball count a session may reach (at open or via
    /// `Insert`).
    pub max_balls: u64,
    /// Largest `k`/`count` of a single `Step`/`Insert`/`Remove`.
    pub max_batch: u64,
    /// Sessions idle longer than this are evicted (checked when new
    /// sessions open).
    pub session_idle_ns: u64,
    /// Socket read deadline; a peer silent for longer is disconnected.
    pub read_timeout: Option<Duration>,
    /// Socket write deadline.
    pub write_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 8,
            max_connections: 256,
            max_sessions: 1024,
            max_bins: 1 << 16,
            max_balls: 1 << 24,
            max_batch: 1 << 16,
            session_idle_ns: 300_000_000_000, // 5 minutes
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Pre-leaked handles into the server's registry — the hot path never
/// takes the registry lock.
struct Metrics {
    registry: Registry,
    conn_accepted: &'static Counter,
    conn_busy_rejected: &'static Counter,
    conn_active: &'static Gauge,
    sessions_active: &'static Gauge,
    sessions_evicted: &'static Counter,
    decode_errors: &'static Counter,
    read_timeouts: &'static Counter,
    io_errors: &'static Counter,
    /// Parallel to [`OP_LABELS`]: requests served and latency, per
    /// opcode.
    by_op: Vec<(&'static Counter, &'static Histogram)>,
}

/// Stable opcode labels (the metric-name suffixes); order matches
/// `Metrics::by_op`.
const OP_LABELS: [&str; 9] = [
    "open",
    "step",
    "insert",
    "remove",
    "query_loads",
    "query_observables",
    "close",
    "stats",
    "shutdown",
];

impl Metrics {
    fn new() -> Self {
        let registry = Registry::new();
        let by_op = OP_LABELS
            .iter()
            .map(|label| {
                (
                    registry.counter(&format!("serve.req.{label}")),
                    registry.histogram(&format!("serve.ns.{label}")),
                )
            })
            .collect();
        Metrics {
            conn_accepted: registry.counter("serve.conn.accepted"),
            conn_busy_rejected: registry.counter("serve.conn.busy_rejected"),
            conn_active: registry.gauge("serve.conn.active"),
            sessions_active: registry.gauge("serve.sessions.active"),
            sessions_evicted: registry.counter("serve.sessions.evicted"),
            decode_errors: registry.counter("serve.decode.errors"),
            read_timeouts: registry.counter("serve.io.read_timeouts"),
            io_errors: registry.counter("serve.io.errors"),
            by_op,
            registry,
        }
    }

    fn for_op(&self, label: &str) -> (&'static Counter, &'static Histogram) {
        let idx = OP_LABELS
            .iter()
            .position(|&l| l == label)
            .expect("every Request::label appears in OP_LABELS");
        self.by_op[idx]
    }
}

/// A blocking allocation server bound to a TCP address.
pub struct Server {
    listener: TcpListener,
    cfg: ServerConfig,
    shards: ShardMap,
    shutdown: AtomicBool,
    metrics: Metrics,
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// # Errors
    /// Propagates the bind failure; rejects configs whose `max_bins`
    /// would let a `Loads` reply exceed the frame cap.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: ServerConfig) -> std::io::Result<Server> {
        let loads_reply = 10u64 + 4 * u64::from(cfg.max_bins);
        if loads_reply > crate::proto::MAX_FRAME as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "max_bins too large: a Loads reply would exceed MAX_FRAME",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            shards: ShardMap::new(cfg.shards.max(1)),
            cfg,
            shutdown: AtomicBool::new(false),
            metrics: Metrics::new(),
        })
    }

    /// The bound address (read the ephemeral port from here).
    ///
    /// # Errors
    /// Propagates the OS query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a `Shutdown` request arrives, then drain in-flight
    /// connections and return. Blocks the calling thread; handlers run
    /// on scoped threads borrowing `&self`.
    ///
    /// # Errors
    /// Propagates accept-loop I/O failures; a handler-thread panic
    /// surfaces as `Other`.
    pub fn run(&self) -> std::io::Result<()> {
        let result = crossbeam::thread::scope(|scope| -> std::io::Result<()> {
            loop {
                let (stream, _peer) = self.listener.accept()?;
                if self.shutdown.load(Ordering::Relaxed) {
                    // The wake-up connection (or a late client); stop
                    // accepting. Spawned handlers drain on scope exit.
                    return Ok(());
                }
                self.metrics.conn_accepted.inc();
                if self.metrics.conn_active.get() >= i64::from(self.cfg.max_connections) {
                    self.reject_busy(stream);
                    continue;
                }
                self.metrics.conn_active.inc();
                scope.spawn(move |_| {
                    self.handle_connection(stream);
                    self.metrics.conn_active.dec();
                });
            }
        });
        match result {
            Ok(io) => io,
            Err(_panic) => Err(std::io::Error::other("a connection handler panicked")),
        }
    }

    /// Ask a running server to stop from the same process (tests, the
    /// bench harness): sets the flag and wakes the accept loop.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Ok(addr) = self.local_addr() {
            // Wake the blocking accept; errors only mean it was already
            // awake or the listener is gone.
            drop(TcpStream::connect(addr));
        }
    }

    /// Snapshot the server's metrics registry (the `Stats` reply is a
    /// rendering of this).
    pub fn metrics_snapshot(&self) -> rt_obs::Json {
        self.metrics.registry.snapshot()
    }

    fn reject_busy(&self, mut stream: TcpStream) {
        self.metrics.conn_busy_rejected.inc();
        let reply = Response::Busy {
            active: i64::max(self.metrics.conn_active.get(), 0) as u32,
            cap: self.cfg.max_connections,
        };
        let _ = stream
            .set_write_timeout(self.cfg.write_timeout)
            .and_then(|()| write_frame(&mut stream, &reply.encode()));
    }

    fn handle_connection(&self, mut stream: TcpStream) {
        if stream.set_read_timeout(self.cfg.read_timeout).is_err()
            || stream.set_write_timeout(self.cfg.write_timeout).is_err()
        {
            self.metrics.io_errors.inc();
            return;
        }
        loop {
            let payload = match read_frame(&mut stream) {
                Ok(Some(p)) => p,
                Ok(None) => return, // clean disconnect
                Err(e) => {
                    match &e {
                        FrameError::Oversize(_) => {
                            self.metrics.decode_errors.inc();
                            let reply = error_reply(ErrorCode::BadRequest, &e.to_string());
                            let _ = write_frame(&mut stream, &reply.encode());
                        }
                        FrameError::Eof => {}
                        FrameError::Io(_) if e.is_timeout() => {
                            self.metrics.read_timeouts.inc();
                        }
                        FrameError::Io(_) => {
                            self.metrics.io_errors.inc();
                        }
                    }
                    // The stream is desynchronized (or dead) after any
                    // frame-layer error: close it.
                    return;
                }
            };
            let request = match Request::decode(&payload) {
                Ok(r) => r,
                Err(e) => {
                    self.metrics.decode_errors.inc();
                    let reply = decode_error_reply(&e);
                    if write_frame(&mut stream, &reply.encode()).is_err() {
                        self.metrics.io_errors.inc();
                        return;
                    }
                    continue; // framing is intact; keep serving
                }
            };
            let is_shutdown = matches!(request, Request::Shutdown);
            let (req_counter, latency) = self.metrics.for_op(request.label());
            req_counter.inc();
            let clock = Stopwatch::start();
            let reply = self.dispatch(request);
            latency.record(clock.elapsed_ns());
            if write_frame(&mut stream, &reply.encode()).is_err() {
                self.metrics.io_errors.inc();
                return;
            }
            if is_shutdown {
                self.request_shutdown();
                return;
            }
        }
    }

    fn dispatch(&self, request: Request) -> Response {
        match request {
            Request::OpenSession {
                n,
                m,
                scenario,
                rule,
                seed,
            } => self.open_session(n, m, scenario, rule, seed),
            Request::Step { session, k } => {
                if k > self.cfg.max_batch {
                    return limit_reply("k", self.cfg.max_batch);
                }
                match self.shards.with(session, |s| {
                    if s.step(k) {
                        Response::Stepped {
                            steps: s.steps(),
                            max_load: s.max_load(),
                        }
                    } else {
                        error_reply(ErrorCode::Empty, "cannot step a session with zero balls")
                    }
                }) {
                    Some(reply) => reply,
                    None => unknown_session(session),
                }
            }
            Request::Insert { session, count } => {
                if count > self.cfg.max_batch {
                    return limit_reply("count", self.cfg.max_batch);
                }
                let max_balls = self.cfg.max_balls;
                match self.shards.with(session, |s| {
                    if s.total() + count > max_balls {
                        limit_reply("total balls", max_balls)
                    } else {
                        s.insert(count);
                        Response::Mutated {
                            total: s.total(),
                            max_load: s.max_load(),
                        }
                    }
                }) {
                    Some(reply) => reply,
                    None => unknown_session(session),
                }
            }
            Request::Remove { session, count } => {
                if count > self.cfg.max_batch {
                    return limit_reply("count", self.cfg.max_batch);
                }
                match self.shards.with(session, |s| {
                    if s.remove(count) {
                        Response::Mutated {
                            total: s.total(),
                            max_load: s.max_load(),
                        }
                    } else {
                        error_reply(ErrorCode::Empty, "fewer balls than requested removals")
                    }
                }) {
                    Some(reply) => reply,
                    None => unknown_session(session),
                }
            }
            Request::QueryLoads { session } => {
                match self.shards.with(session, |s| Response::Loads {
                    loads: s.loads().to_vec(),
                }) {
                    Some(reply) => reply,
                    None => unknown_session(session),
                }
            }
            Request::QueryObservables { session } => {
                match self.shards.with(session, |s| s.observables()) {
                    Some(o) => Response::Observables(o),
                    None => unknown_session(session),
                }
            }
            Request::CloseSession { session } => {
                if self.shards.close(session) {
                    self.metrics.sessions_active.dec();
                    Response::Closed
                } else {
                    unknown_session(session)
                }
            }
            Request::Stats => Response::Stats {
                text: self.render_stats(),
            },
            Request::Shutdown => Response::ShuttingDown,
        }
    }

    fn open_session(
        &self,
        n: u32,
        m: u32,
        scenario: crate::proto::Scenario,
        rule: crate::proto::RuleSpec,
        seed: u64,
    ) -> Response {
        if self.shutdown.load(Ordering::Relaxed) {
            return error_reply(ErrorCode::ShuttingDown, "server is draining");
        }
        if n > self.cfg.max_bins {
            return limit_reply("n", u64::from(self.cfg.max_bins));
        }
        if u64::from(m) > self.cfg.max_balls {
            return limit_reply("m", self.cfg.max_balls);
        }
        // Opening is the natural moment to reap stale sessions: it is
        // exactly when capacity is wanted.
        let evicted = self.shards.evict_idle(self.cfg.session_idle_ns);
        if evicted > 0 {
            self.metrics.sessions_evicted.add(evicted as u64);
            self.metrics.sessions_active.sub(evicted as i64);
        }
        let session = match Session::open(n, m, scenario, rule, seed) {
            Ok(s) => s,
            Err(e) => return error_reply(ErrorCode::BadRequest, &e.to_string()),
        };
        match self.shards.try_open(session, self.cfg.max_sessions) {
            Some(id) => {
                self.metrics.sessions_active.inc();
                Response::SessionOpened { session: id }
            }
            None => limit_reply("sessions", self.cfg.max_sessions),
        }
    }

    fn render_stats(&self) -> String {
        let snap = self.metrics.registry.snapshot();
        let mut table = Table::new(["metric", "value"]);
        for section in ["counters", "gauges"] {
            if let Some(pairs) = snap.get(section).and_then(|j| j.as_obj()) {
                for (name, value) in pairs {
                    let v = value.as_f64().unwrap_or(f64::NAN);
                    table.push_row([name.clone(), format!("{v}")]);
                }
            }
        }
        if let Some(hists) = snap.get("histograms").and_then(|j| j.as_obj()) {
            for (name, h) in hists {
                for field in ["count", "mean", "p50", "p99"] {
                    if let Some(v) = h.get(field).and_then(|j| j.as_f64()) {
                        table.push_row([format!("{name}.{field}"), format!("{v:.0}")]);
                    }
                }
            }
        }
        for (i, occupancy) in self.shards.occupancy().iter().enumerate() {
            table.push_row([format!("serve.shard.{i}.sessions"), occupancy.to_string()]);
        }
        table.render()
    }
}

fn unknown_session(id: u64) -> Response {
    error_reply(ErrorCode::UnknownSession, &format!("no session {id}"))
}

fn limit_reply(what: &str, limit: u64) -> Response {
    error_reply(
        ErrorCode::LimitExceeded,
        &format!("{what} exceeds the configured limit {limit}"),
    )
}

fn error_reply(code: ErrorCode, message: &str) -> Response {
    Response::Error {
        code,
        message: message.to_string(),
    }
}

fn decode_error_reply(e: &ProtoError) -> Response {
    error_reply(ErrorCode::BadRequest, &e.to_string())
}
