//! The closed-loop load generator behind the `rt-load` binary and the
//! serving benchmark: `connections` client threads, each driving its
//! own session with back-to-back `Step` requests and recording every
//! request's latency.
//!
//! Closed-loop means each connection issues the next request only
//! after the previous response arrives, so concurrency is exactly the
//! connection count and the measured throughput is the sustainable
//! one, not a queue filling up.

use std::time::Duration;

use rt_obs::{Counter, Histogram, Stopwatch};
use rt_sim::{Seeder, Table};

use crate::client::Client;
use crate::proto::{RuleSpec, Scenario};

/// Parameters of one load run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address, e.g. `"127.0.0.1:4547"`.
    pub addr: String,
    /// Concurrent connections (each with its own session).
    pub connections: usize,
    /// `Step` requests each connection issues.
    pub requests_per_connection: u64,
    /// Phases per `Step` request.
    pub steps_per_request: u64,
    /// Bins per session.
    pub bins: u32,
    /// Balls per session (crash-started in bin 0).
    pub balls: u32,
    /// Scenario every session runs.
    pub scenario: Scenario,
    /// Rule every session runs.
    pub rule: RuleSpec,
    /// Master seed; per-connection session seeds are derived from it
    /// (`rt_sim::Seeder`), so a load run is reproducible end to end.
    pub seed: u64,
    /// Socket deadlines for every client connection.
    pub timeout: Option<Duration>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:4547".to_string(),
            connections: 8,
            requests_per_connection: 100,
            steps_per_request: 64,
            bins: 256,
            balls: 256,
            scenario: Scenario::B,
            rule: RuleSpec::Abku { d: 2 },
            seed: 12345,
            timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// What a load run measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Connections that completed their full request schedule.
    pub completed_connections: usize,
    /// Connections that aborted (connect failure or a failed call).
    pub failed_connections: usize,
    /// Successful `Step` requests across all connections.
    pub requests: u64,
    /// Phases executed across all connections.
    pub steps: u64,
    /// Failed calls (transport errors or server refusals).
    pub errors: u64,
    /// Wall time of the whole run.
    pub elapsed_ns: u64,
    /// Mean per-request latency in nanoseconds.
    pub latency_mean_ns: f64,
    /// Median per-request latency (bucket-resolution estimate).
    pub latency_p50_ns: u64,
    /// 99th-percentile per-request latency (bucket-resolution
    /// estimate).
    pub latency_p99_ns: u64,
}

impl LoadReport {
    /// Phases per second over the whole run.
    pub fn steps_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.steps as f64 * 1e9 / self.elapsed_ns as f64
    }

    /// Requests per second over the whole run.
    pub fn requests_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.requests as f64 * 1e9 / self.elapsed_ns as f64
    }

    /// Render the report as an aligned two-column table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(["metric", "value"]);
        t.push_row(["connections ok", &self.completed_connections.to_string()]);
        t.push_row(["connections failed", &self.failed_connections.to_string()]);
        t.push_row(["requests", &self.requests.to_string()]);
        t.push_row(["steps", &self.steps.to_string()]);
        t.push_row(["errors", &self.errors.to_string()]);
        t.push_row(["elapsed ms", &(self.elapsed_ns / 1_000_000).to_string()]);
        t.push_row(["steps/s", &rt_sim::table::g(self.steps_per_sec())]);
        t.push_row(["requests/s", &rt_sim::table::g(self.requests_per_sec())]);
        t.push_row([
            "latency mean µs",
            &rt_sim::table::g(self.latency_mean_ns / 1e3),
        ]);
        t.push_row([
            "latency p50 µs",
            &rt_sim::table::g(self.latency_p50_ns as f64 / 1e3),
        ]);
        t.push_row([
            "latency p99 µs",
            &rt_sim::table::g(self.latency_p99_ns as f64 / 1e3),
        ]);
        t
    }
}

/// Drive one connection's full schedule; returns `(requests, steps)`
/// on completion, `Err` after the first failed call.
fn drive_connection(
    cfg: &LoadConfig,
    session_seed: u64,
    latency: &Histogram,
    errors: &Counter,
) -> Result<(u64, u64), ()> {
    let fail = |e: &dyn std::fmt::Display| {
        // Load generation is best-effort: failures are counted, not
        // propagated — the report's error column is the signal.
        let _ = e;
        errors.inc();
        Err(())
    };
    let mut client = match Client::connect(&cfg.addr) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    if let Err(e) = client.set_timeouts(cfg.timeout, cfg.timeout) {
        return fail(&e);
    }
    let session =
        match client.open_session(cfg.bins, cfg.balls, cfg.scenario, cfg.rule, session_seed) {
            Ok(id) => id,
            Err(e) => return fail(&e),
        };
    let mut requests = 0u64;
    let mut steps = 0u64;
    for _ in 0..cfg.requests_per_connection {
        let clock = Stopwatch::start();
        match client.step(session, cfg.steps_per_request) {
            Ok(_) => {
                latency.record(clock.elapsed_ns());
                requests += 1;
                steps += cfg.steps_per_request;
            }
            Err(e) => return fail(&e),
        }
    }
    // Best-effort cleanup; the server would evict the session anyway.
    let _ = client.close_session(session);
    Ok((requests, steps))
}

/// Run a closed-loop load test against a running server.
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    let latency = Histogram::new();
    let errors = Counter::new();
    let seeder = Seeder::new(cfg.seed);
    let clock = Stopwatch::start();
    let outcomes: Vec<Result<(u64, u64), ()>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections)
            .map(|i| {
                let session_seed = seeder.seed_for(i as u64);
                let latency = &latency;
                let errors = &errors;
                scope.spawn(move |_| drive_connection(cfg, session_seed, latency, errors))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(Err(())))
            .collect()
    })
    .unwrap_or_default();
    let elapsed_ns = clock.elapsed_ns();
    let mut requests = 0u64;
    let mut steps = 0u64;
    let mut completed = 0usize;
    let mut failed = 0usize;
    for outcome in &outcomes {
        match outcome {
            Ok((r, s)) => {
                completed += 1;
                requests += r;
                steps += s;
            }
            Err(()) => failed += 1,
        }
    }
    LoadReport {
        completed_connections: completed,
        failed_connections: failed,
        requests,
        steps,
        errors: errors.get(),
        elapsed_ns,
        latency_mean_ns: latency.mean(),
        latency_p50_ns: latency.quantile(0.5).unwrap_or(0),
        latency_p99_ns: latency.quantile(0.99).unwrap_or(0),
    }
}
